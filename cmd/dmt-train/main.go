// Command dmt-train regenerates the paper's model-quality tables by
// training the reproduction's models on the synthetic CTR workload:
// Tables 2–6, Figure 9, and the XLRM-mini normalized-entropy comparison.
//
// Usage:
//
//	dmt-train                         # everything at the quick profile
//	dmt-train -exp table6 -profile full
//	dmt-train -list
//
// Profiles: smoke (seconds), quick (default, ~minutes), full (the paper's
// 9-repeat protocol; slowest).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dmt/internal/experiments"
)

var runners = map[string]func(p experiments.Profile) string{
	"table2": func(p experiments.Profile) string { return experiments.FormatTable2(experiments.Table2(p)) },
	"table3": func(p experiments.Profile) string {
		return experiments.FormatQualityRows("Table 3: SPTT AUC-neutrality", experiments.Table3(p))
	},
	"table4": func(p experiments.Profile) string {
		return experiments.FormatQualityRows("Table 4: DMT tower-count sweep", experiments.Table4(p))
	},
	"table5":      func(p experiments.Profile) string { return experiments.FormatTable5(experiments.Table5(p)) },
	"table6":      func(p experiments.Profile) string { return experiments.FormatTable6(experiments.Table6(p)) },
	"fig9":        func(p experiments.Profile) string { return experiments.FormatFigure9(experiments.Figure9(p)) },
	"fig9learned": func(p experiments.Profile) string { return experiments.FormatFigure9(experiments.Figure9Learned(p)) },
	"xlrm":        func(p experiments.Profile) string { return experiments.FormatXLRM(experiments.XLRMQuality(p)) },
	"quantq":      func(p experiments.Profile) string { return experiments.FormatQuantQuality(experiments.QuantQuality(p)) },
}

var order = []string{"table2", "table3", "table4", "table5", "table6", "fig9", "xlrm", "quantq"}

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	profileName := flag.String("profile", "quick", "smoke | quick | full")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	var profile experiments.Profile
	switch *profileName {
	case "smoke":
		profile = experiments.Smoke()
	case "quick":
		profile = experiments.Quick()
	case "full":
		profile = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "dmt-train: unknown profile %q\n", *profileName)
		os.Exit(2)
	}

	runOne := func(name string) {
		start := time.Now()
		fmt.Print(runners[name](profile))
		fmt.Printf("[%s profile, %.1fs]\n\n", profile.Name, time.Since(start).Seconds())
	}
	if *exp != "" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "dmt-train: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		runOne(*exp)
		return
	}
	for _, name := range order {
		runOne(name)
	}
}
