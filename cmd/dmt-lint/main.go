// dmt-lint machine-checks the repo's concurrency, refcount, and
// determinism invariants (see internal/analysis).
//
// It is a standard go/analysis unitchecker, so it runs two ways:
//
//	go vet -vettool=$(pwd)/bin/dmt-lint ./...   # as a vet tool
//	go run ./cmd/dmt-lint ./...                 # standalone
//
// Standalone mode simply re-executes the binary under `go vet -vettool`,
// which supplies the build-system plumbing (package loading, export
// data, fact files) a unitchecker needs.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"dmt/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if vetInvocation(args) {
		unitchecker.Main(analysis.All()...) // does not return
	}

	// Standalone: re-exec under go vet with ourselves as the tool.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmt-lint: %v\n", err)
		os.Exit(1)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "dmt-lint: %v\n", err)
		os.Exit(1)
	}
}

// vetInvocation reports whether the go command is driving us: it calls
// the tool with -V=full for its version handshake, -flags to enumerate
// the tool's flags, and a *.cfg file per package unit.
func vetInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
