// Command dmt-bench regenerates the paper's throughput tables and figures
// from the calibrated performance model: Table 1, Figures 1, 5, 6, 10, 11,
// 12, 13, the §6 quantization comparison, and the K-host-towers ablation —
// plus the measured distributed-training engine comparison (-exp train),
// which times real sequential vs rank-parallel steps on this machine.
//
// Usage:
//
//	dmt-bench                          # run everything
//	dmt-bench -exp fig10               # one experiment
//	dmt-bench -exp train -compress fp16  # measured training over a quantized wire
//	dmt-bench -exp train -overlap      # add the overlapped engine row
//	dmt-bench -exp fig13 -gen h100     # measured component latencies on a simulated fabric
//	dmt-bench -exp pipeline            # cross-step pipelining vs the overlapped schedule
//	dmt-bench -exp embtier             # disaggregated embedding tier memory:compute sweep
//	dmt-bench -list                    # list experiment names
//
// -gen picks the hardware generation (v100, a100, h100) for the experiments
// that simulate a fabric: `fig13` runs the training engines with the comm
// runtime in netsim-driven latency mode and prints the measured,
// deterministic component-latency table (fig13model remains the closed-form
// reproduction of the paper's figure).
//
// -compress selects the wire scheme (fp32, fp16, int8, int4) for the
// experiments that model or measure compressed communication: `train` runs
// the rank-parallel engine with quantized collectives (gradient AllReduce
// with error feedback, cross-host embedding hops) and appends a per-scheme
// sweep against fp32; `fig6` costs the parallelism search over compressed
// links.
//
// -overlap adds a third row to `train`: the overlapped schedule, which
// hides the SPTT peer AlltoAll behind the bottom-MLP forward and the
// bucketed gradient AllReduce behind the dense and embedding backward.
// The table's exposed/hidden columns show how much communication the
// schedule moved off the critical path; the trajectory stays bitwise
// identical to the blocking engines.
//
// -pipeline adds a cross-step pipelined row to `train` instead: the
// overlapped schedule extended across step boundaries, with step N's
// gradient buckets completing behind step N+1's SPTT forward. The
// `pipeline` experiment measures the same schedule on the simulated
// fabric, where the boundary-drain saving is a deterministic virtual-clock
// quantity (the bench-pipeline CI gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dmt/internal/experiments"
	"dmt/internal/perfmodel"
	"dmt/internal/quant"
	"dmt/internal/topology"
	"dmt/internal/trace"
)

// compress is the wire scheme selected by -compress; fp32 reproduces every
// experiment's historical output exactly.
var compress quant.Scheme

// overlap adds the overlapped-engine row to the train experiment.
var overlap bool

// pipeline adds the cross-step pipelined row to the train experiment.
var pipeline bool

// gen is the hardware generation selected by -gen for the experiments that
// simulate a fabric (fig13).
var gen topology.Generation

var runners = map[string]func() string{
	"table1": func() string { return experiments.FormatTable1(experiments.Table1()) },
	"fig1":   func() string { return experiments.FormatFigure1(experiments.Figure1()) },
	"fig5":   func() string { return experiments.FormatFigure5(experiments.Figure5()) },
	"fig6":   func() string { return experiments.FormatFigure6(experiments.Figure6Compressed(compress)) },
	"fig10": func() string {
		return experiments.FormatSpeedups("Figure 10: Speedup of DMT over Strong Baseline", experiments.Figure10())
	},
	"fig11": func() string {
		return experiments.FormatSpeedups("Figure 11: Speedup of Tower Modules over SPTT (DLRM)", experiments.Figure11())
	},
	"fig12":    func() string { return experiments.FormatFigure12(experiments.Figure12()) },
	"fig13":    func() string { return experiments.FormatFigure13(experiments.Figure13(gen)) },
	"pipeline": func() string { return experiments.FormatPipeline(experiments.Pipeline(gen)) },
	"embtier":  func() string { return experiments.FormatEmbTier(experiments.EmbTier(gen)) },
	"fig13model": func() string {
		return experiments.FormatFigure13Model(experiments.Figure13Model())
	},
	"quant": func() string { return experiments.FormatQuantXLRM(experiments.QuantXLRM()) },
	"khost": func() string { return experiments.FormatTowerHostsAblation(experiments.TowerHostsAblation()) },
	"train": func() string {
		p := experiments.DefaultTraining()
		p.Compress = compress
		p.Overlap = overlap
		p.Pipeline = pipeline
		out := experiments.FormatTraining(experiments.TrainingThroughput(p))
		if compress != quant.None {
			out += experiments.FormatCompression(
				experiments.TrainingCompression(p, []quant.Scheme{compress}))
		}
		return out
	},
	"timeline": func() string {
		c := topology.NewCluster(topology.H100, 64)
		return trace.Compare(
			perfmodel.DefaultConfig(perfmodel.DCNSpec(), c, perfmodel.Baseline),
			perfmodel.DefaultConfig(perfmodel.DCNSpec(), c, perfmodel.DMT), 64)
	},
}

// order fixes the presentation sequence for the "run everything" mode.
var order = []string{"table1", "fig1", "fig5", "fig6", "fig10", "fig11", "fig12", "fig13model", "fig13", "pipeline", "embtier", "quant", "khost", "train", "timeline"}

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	list := flag.Bool("list", false, "list experiment names and exit")
	scheme := flag.String("compress", "fp32", "wire scheme for train/fig6 (fp32, fp16, int8, int4)")
	genName := flag.String("gen", "a100", "hardware generation for the simulated fabric (v100, a100, h100)")
	flag.BoolVar(&overlap, "overlap", false, "measure the overlapped engine in the train experiment")
	flag.BoolVar(&pipeline, "pipeline", false, "measure the cross-step pipelined engine in the train experiment")
	flag.Parse()

	var err error
	if compress, err = quant.ParseScheme(*scheme); err != nil {
		fmt.Fprintf(os.Stderr, "dmt-bench: %v\n", err)
		os.Exit(2)
	}
	if gen, err = topology.ByName(strings.ToUpper(*genName)); err != nil {
		fmt.Fprintf(os.Stderr, "dmt-bench: %v\n", err)
		os.Exit(2)
	}

	if *list {
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	if *exp != "" {
		run, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "dmt-bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Print(run())
		return
	}
	for _, name := range order {
		fmt.Print(runners[name]())
		fmt.Println()
	}
}
