// Command dmt-serve runs the online serving benchmark: it stands up the
// micro-batching inference server over a trained-shape model and drives it
// with the built-in closed-loop, zipf-skewed load generator, reporting
// QPS, latency percentiles, batch occupancy, and cache hit rates for the
// unbatched, micro-batched, and cached serving modes side by side.
//
// Usage:
//
//	dmt-serve                                  # default comparison table
//	dmt-serve -requests 20000 -concurrency 64  # heavier load
//	dmt-serve -table                           # the experiments.ServingTable profile
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmt/internal/data"
	"dmt/internal/experiments"
)

func main() {
	var (
		requests    = flag.Int("requests", 8192, "requests per (model, mode) cell")
		concurrency = flag.Int("concurrency", 32, "closed-loop client goroutines")
		unique      = flag.Int("unique", 1024, "distinct samples the zipf load draws from")
		zipfS       = flag.Float64("zipf", 1.2, "zipf skew (>1); higher = hotter head")
		maxBatch    = flag.Int("max-batch", 32, "micro-batch flush size")
		maxWait     = flag.Duration("max-wait", time.Millisecond, "micro-batch flush timeout")
		cacheSize   = flag.Int("cache", 1<<14, "entries per cache (embedding and tower)")
		towers      = flag.Int("towers", 8, "DMT tower count")
		table       = flag.Bool("table", false, "run the experiments.ServingTable default profile and exit")
	)
	flag.Parse()

	if *table {
		fmt.Print(experiments.FormatServing(experiments.ServingTable(experiments.DefaultServing())))
		return
	}

	cfg := data.CriteoLike(1)
	if *towers < 1 || *towers > cfg.NumSparse() {
		fmt.Fprintf(os.Stderr, "dmt-serve: -towers must be in [1,%d] (one nonempty tower per feature group), got %d\n",
			cfg.NumSparse(), *towers)
		os.Exit(2)
	}
	if *unique < 1 {
		fmt.Fprintf(os.Stderr, "dmt-serve: -unique must be positive, got %d\n", *unique)
		os.Exit(2)
	}
	p := experiments.ServingProfile{
		Requests:      *requests,
		Concurrency:   *concurrency,
		UniqueSamples: *unique,
		ZipfS:         *zipfS,
		MaxBatch:      *maxBatch,
		MaxWait:       *maxWait,
		CacheEntries:  *cacheSize,
		Towers:        *towers,
	}

	fmt.Printf("workload: %d dense + %d sparse features, %d unique samples, zipf s=%.2f\n",
		cfg.NumDense, cfg.NumSparse(), p.UniqueSamples, p.ZipfS)
	fmt.Printf("server: max-batch=%d max-wait=%v cache=%d entries, %d clients, %d requests/cell\n\n",
		p.MaxBatch, p.MaxWait, p.CacheEntries, p.Concurrency, p.Requests)

	rows := experiments.ServingTable(p)
	fmt.Print(experiments.FormatServing(rows))

	// The headline DMT numbers: batching speedup and cache speedup.
	var unbatched, batched, cached *experiments.ServingRow
	for i := range rows {
		r := &rows[i]
		if r.Model == fmt.Sprintf("DMT %dT-DLRM", *towers) {
			switch r.Mode {
			case "unbatched":
				unbatched = r
			case "microbatch":
				batched = r
			case "microbatch+cache":
				cached = r
			}
		}
	}
	if unbatched != nil && batched != nil && cached != nil {
		fmt.Printf("\nDMT micro-batching speedup: %.2fx  (+caches: %.2fx, tower hit rate %.1f%%)\n",
			batched.QPS/unbatched.QPS, cached.QPS/unbatched.QPS, cached.TowerHitRate*100)
	}
}
