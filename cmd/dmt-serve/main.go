// Command dmt-serve runs the online serving benchmark: it stands up the
// micro-batching inference server over a trained-shape model and drives it
// with the built-in closed-loop, zipf-skewed load generator, reporting
// QPS, latency percentiles, batch occupancy, and cache hit rates for the
// unbatched, micro-batched, and cached serving modes side by side.
//
// With -cluster it switches to the deterministic discrete-event fleet
// simulator instead: open-loop arrivals with SLO classes replayed against
// growing replica counts, emitting the capacity-planning table (how many
// replicas does each arrival rate need to hold every class's p99?).
//
// Usage:
//
//	dmt-serve                                  # default comparison table
//	dmt-serve -requests 20000 -concurrency 64  # heavier load
//	dmt-serve -table                           # the experiments.ServingTable profile
//	dmt-serve -cluster                         # simulated capacity-planning sweep
//	dmt-serve -cluster -policy least-loaded -arrival gamma -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dmt/internal/cluster"
	"dmt/internal/data"
	"dmt/internal/experiments"
	"dmt/internal/perfmodel"
	"dmt/internal/serve"
	"dmt/internal/topology"
	"dmt/internal/workload"
)

func main() {
	var (
		requests    = flag.Int("requests", 8192, "requests per (model, mode) cell")
		concurrency = flag.Int("concurrency", 32, "closed-loop client goroutines")
		unique      = flag.Int("unique", 1024, "distinct samples the zipf load draws from")
		zipfS       = flag.Float64("zipf", 1.2, "zipf skew (>1); higher = hotter head")
		maxBatch    = flag.Int("max-batch", 32, "micro-batch flush size")
		maxWait     = flag.Duration("max-wait", time.Millisecond, "micro-batch flush timeout")
		cacheSize   = flag.Int("cache", 1<<14, "entries per cache (embedding and tower)")
		towers      = flag.Int("towers", 8, "DMT tower count")
		table       = flag.Bool("table", false, "run the experiments.ServingTable default profile and exit")

		clusterMode = flag.Bool("cluster", false, "run the discrete-event cluster simulator instead of the real server")
		policy      = flag.String("policy", "cache-affinity", "cluster routing policy: round-robin, least-loaded, cache-affinity")
		arrival     = flag.String("arrival", "poisson", "cluster arrival process: poisson, gamma, weibull")
		shape       = flag.Float64("shape", 2, "gamma/weibull arrival shape")
		rates       = flag.String("rates", "", "comma-separated arrival rates (req/s) to sweep (default profile's)")
		maxReplicas = flag.Int("max-replicas", 8, "largest fleet size the sweep tries")
		admit       = flag.Float64("admit", 0, "token-bucket admission rate per replica (req/s, 0 = off)")
		seed        = flag.Uint64("seed", 1, "cluster workload seed")
	)
	flag.Parse()

	if *clusterMode {
		p := experiments.DefaultCluster()
		p.Towers = *towers
		p.ZipfS = *zipfS
		p.MaxBatch = *maxBatch
		p.Policy = *policy
		p.Shape = *shape
		p.MaxReplicas = *maxReplicas
		p.AdmitPerRep = *admit
		p.Seed = *seed
		if _, err := cluster.ParsePolicy(*policy); err != nil {
			fmt.Fprintf(os.Stderr, "dmt-serve: %v\n", err)
			os.Exit(2)
		}
		dist, err := workload.ParseDist(*arrival)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmt-serve: %v\n", err)
			os.Exit(2)
		}
		p.Arrival = dist
		if *rates != "" {
			p.Rates = nil
			for _, s := range strings.Split(*rates, ",") {
				r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil || r <= 0 {
					fmt.Fprintf(os.Stderr, "dmt-serve: bad -rates entry %q\n", s)
					os.Exit(2)
				}
				p.Rates = append(p.Rates, r)
			}
		}
		res, err := experiments.ClusterCapacity(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmt-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatCluster(res))
		return
	}

	if *table {
		rows, err := experiments.ServingTable(experiments.DefaultServing())
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmt-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatServing(rows))
		return
	}

	cfg := data.CriteoLike(1)
	if *towers < 1 || *towers > cfg.NumSparse() {
		fmt.Fprintf(os.Stderr, "dmt-serve: -towers must be in [1,%d] (one nonempty tower per feature group), got %d\n",
			cfg.NumSparse(), *towers)
		os.Exit(2)
	}
	if *unique < 1 {
		fmt.Fprintf(os.Stderr, "dmt-serve: -unique must be positive, got %d\n", *unique)
		os.Exit(2)
	}
	p := experiments.ServingProfile{
		Requests:      *requests,
		Concurrency:   *concurrency,
		UniqueSamples: *unique,
		ZipfS:         *zipfS,
		MaxBatch:      *maxBatch,
		MaxWait:       *maxWait,
		CacheEntries:  *cacheSize,
		Towers:        *towers,
	}

	fmt.Printf("workload: %d dense + %d sparse features, %d unique samples, zipf s=%.2f\n",
		cfg.NumDense, cfg.NumSparse(), p.UniqueSamples, p.ZipfS)
	fmt.Printf("server: max-batch=%d max-wait=%v cache=%d entries, %d clients, %d requests/cell\n\n",
		p.MaxBatch, p.MaxWait, p.CacheEntries, p.Concurrency, p.Requests)

	rows, err := experiments.ServingTable(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmt-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatServing(rows))

	// The headline DMT numbers: batching speedup and cache speedup.
	var unbatched, batched, cached *experiments.ServingRow
	for i := range rows {
		r := &rows[i]
		if r.Model == fmt.Sprintf("DMT %dT-DLRM", *towers) {
			switch r.Mode {
			case "unbatched":
				unbatched = r
			case "microbatch":
				batched = r
			case "microbatch+cache":
				cached = r
			}
		}
	}
	if unbatched != nil && batched != nil && cached != nil {
		fmt.Printf("\nDMT micro-batching speedup: %.2fx  (+caches: %.2fx, tower hit rate %.1f%%)\n",
			batched.QPS/unbatched.QPS, cached.QPS/unbatched.QPS, cached.TowerHitRate*100)
	}

	// The same cost model the cluster simulator runs on, for the modeled
	// counterpart of the measured numbers above.
	cost := serve.NewCostModel(topology.A100, perfmodel.DLRMSpec(), *towers)
	fmt.Printf("\nmodeled (%s):\n  full batch of %d: forward %v, cold embedding fetch %v\n",
		cost, p.MaxBatch,
		cost.ForwardTime(p.MaxBatch, 0).Round(time.Microsecond),
		cost.EmbFetchTime(p.MaxBatch*cost.EmbTables).Round(time.Microsecond))
}
