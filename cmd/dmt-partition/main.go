// Command dmt-partition runs the Tower Partitioner standalone on the
// synthetic workload: it derives the feature-interaction matrix, embeds the
// features into the plane with the learned MDS step, clusters them with
// constrained K-Means, and prints the assignment plus quality metrics
// against the naive and greedy baselines.
//
// Usage:
//
//	dmt-partition -towers 8 -strategy coherent
//	dmt-partition -towers 4 -strategy diverse -features 26
package main

import (
	"flag"
	"fmt"
	"os"

	"dmt/internal/data"
	"dmt/internal/partition"
)

func main() {
	towers := flag.Int("towers", 8, "number of towers to create")
	strategyName := flag.String("strategy", "coherent", "coherent | diverse")
	features := flag.Int("features", 24, "number of sparse features in the workload")
	seed := flag.Uint64("seed", 1, "workload and partitioner seed")
	flag.Parse()

	var strategy partition.Strategy
	switch *strategyName {
	case "coherent":
		strategy = partition.Coherent
	case "diverse":
		strategy = partition.Diverse
	default:
		fmt.Fprintf(os.Stderr, "dmt-partition: unknown strategy %q\n", *strategyName)
		os.Exit(2)
	}

	cfg := data.CriteoLike(*seed)
	cfg.Cardinalities = make([]int, *features)
	cfg.HotSizes = make([]int, *features)
	for i := range cfg.Cardinalities {
		cfg.Cardinalities[i] = 128
		cfg.HotSizes[i] = 1
	}
	gen := data.NewGenerator(cfg)

	tp := partition.NewTP(strategy, *seed+1)
	res, err := tp.PartitionEmbeddings(gen.LatentBatch(0, 256), *towers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmt-partition: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("Tower Partitioner (%s strategy, %d towers, %d features)\n\n",
		strategy, *towers, *features)
	for t, g := range res.Groups {
		fmt.Printf("  tower %2d (host %2d): features %v\n", t, t, g)
	}

	within, cross := partition.WithinCrossAffinity(res.Interaction, res.Groups)
	nWithin, nCross := partition.WithinCrossAffinity(res.Interaction,
		partition.NaiveAssignment(*features, *towers))
	greedy := partition.GreedyCoherent(res.Interaction, *towers, (*features+*towers-1)/(*towers))
	gWithin, gCross := partition.WithinCrossAffinity(res.Interaction, greedy)

	fmt.Printf("\n%-22s %12s %12s\n", "Assignment", "within-aff", "cross-aff")
	fmt.Printf("%-22s %12.4f %12.4f\n", "TP ("+strategy.String()+")", within, cross)
	fmt.Printf("%-22s %12.4f %12.4f\n", "naive strided", nWithin, nCross)
	fmt.Printf("%-22s %12.4f %12.4f\n", "greedy graph-cut", gWithin, gCross)

	minSz, maxSz, ratio := partition.BalanceStats(res.Groups)
	fmt.Printf("\nbalance: group sizes %d..%d (max/min %.2f); MDS stress %.4f -> %.4f over %d steps\n",
		minSz, maxSz, ratio, res.Stress[0], res.Stress[len(res.Stress)-1], len(res.Stress))
	agree := partition.PairAgreement(res.Groups, gen.TrueGroups(), *features)
	fmt.Printf("recovery of the workload's planted groups (pair F1): %.3f\n", agree)
}
