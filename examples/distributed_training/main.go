// Distributed training: DMT's actual training paradigm end to end —
// model-parallel embedding tables behind the SPTT dataflow, data-parallel
// over-arch replicas, and tower modules replicated per host GPU with
// intra-host gradient reduction (§2.2, §3.1, §3.2) — on an in-process
// cluster of 8 goroutine ranks across 2 hosts.
//
//	go run ./examples/distributed_training
package main

import (
	"fmt"

	"dmt/internal/data"
	"dmt/internal/distributed"
	"dmt/internal/metrics"
	"dmt/internal/models"
	"dmt/internal/nn"
	"dmt/internal/partition"
)

func main() {
	// Workload: 8 sparse features in 2 planted groups.
	dcfg := data.CriteoLike(21)
	dcfg.Cardinalities = make([]int, 8)
	dcfg.HotSizes = make([]int, 8)
	for i := range dcfg.Cardinalities {
		dcfg.Cardinalities[i] = 48
		dcfg.HotSizes[i] = 1
	}
	dcfg.NumGroups = 2
	gen := data.NewGenerator(dcfg)

	// Towers from TP: 2 hosts -> 2 towers.
	tp := partition.NewTP(partition.Coherent, 3)
	res, err := tp.PartitionEmbeddings(gen.LatentBatch(0, 128), 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("TP towers:", res.Groups)

	const g, l, localBatch = 8, 4, 32
	cfg := distributed.Config{
		G: g, L: l, LocalBatch: localBatch,
		Model: models.DMTDLRMConfig{
			Schema: dcfg.Schema, N: 16, Towers: res.Groups,
			C: 1, P: 0, D: 8,
			BottomMLP: []int{32, 8}, TopMLP: []int{32},
			Seed: 5,
		},
		DenseLR: 2e-3, SparseLR: 2e-2, Seed: 9,
	}
	tr, err := distributed.New(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("training on %d ranks (%d hosts x %d GPUs), local batch %d (global %d)\n",
		g, g/l, l, localBatch, g*localBatch)
	const steps = 60
	for step := 0; step < steps; step++ {
		batches := make([]*data.Batch, g)
		for r := 0; r < g; r++ {
			batches[r] = gen.Batch(step*g*localBatch+r*localBatch, localBatch)
		}
		out := tr.Step(batches)
		if step%10 == 0 || step == steps-1 {
			fmt.Printf("  step %3d: mean loss %.4f\n", step, out.MeanLoss)
		}
	}
	if err := tr.ReplicasInSync(); err != nil {
		panic(err)
	}
	fmt.Println("replica sync check: over-arch and tower-module replicas bit-identical")

	// Evaluate on held-out samples with rank 0's replica + the canonical
	// tables (copied into the replica's lookup path via the engine).
	eval := gen.Batch(1<<22, 4096)
	m := tr.Replica(0)
	for f, e := range m.Embs {
		e.Table.CopyFrom(tr.Engine().Tables[f].Table)
	}
	logits := m.Forward(eval)
	scores := nn.Predictions(logits)
	fmt.Printf("held-out AUC after %d distributed steps: %.4f\n",
		steps, metrics.AUC(scores, eval.Labels))
}
