// CTR training comparison: the Strong Baseline DLRM/DCN against their DMT
// counterparts on the synthetic click-through-rate workload — the quality
// side of the paper's Table 4 in miniature.
//
//	go run ./examples/ctr_training
//
// The towers come from the Tower Partitioner's coherent strategy, so the
// planted feature-interaction groups end up co-located and the hierarchical
// interaction can recover what compression would otherwise lose.
package main

import (
	"fmt"

	"dmt/internal/data"
	"dmt/internal/models"
	"dmt/internal/partition"
)

func main() {
	cfg := data.CriteoLike(11)
	cfg.Cardinalities = make([]int, 24)
	cfg.HotSizes = make([]int, 24)
	for i := range cfg.Cardinalities {
		cfg.Cardinalities[i] = 64
		cfg.HotSizes[i] = 1
	}
	gen := data.NewGenerator(cfg)

	tp := partition.NewTP(partition.Coherent, 5)
	res, err := tp.PartitionEmbeddings(gen.LatentBatch(0, 256), 8)
	if err != nil {
		panic(err)
	}
	towers := res.Groups

	tc := models.DefaultTrainConfig()
	tc.Steps = 300
	tc.BatchSize = 128

	const n = 16
	runs := []struct {
		name  string
		model models.Model
	}{
		{"DLRM (strong baseline)", models.NewDLRM(models.DLRMConfig{
			Schema: cfg.Schema, N: n, BottomMLP: []int{32, n}, TopMLP: []int{64, 32}, Seed: 1})},
		{"DMT 8T-DLRM (CR 2)", models.NewDMTDLRM(models.DMTDLRMConfig{
			Schema: cfg.Schema, N: n, Towers: towers, C: 1, P: 0, D: n / 2,
			BottomMLP: []int{32, n / 2}, TopMLP: []int{64, 32}, Seed: 1})},
		{"DCN (strong baseline)", models.NewDCN(models.DCNConfig{
			Schema: cfg.Schema, N: n, CrossLayers: 2, DeepMLP: []int{64, 32}, Seed: 1})},
		{"DMT 8T-DCN", models.NewDMTDCN(models.DMTDCNConfig{
			Schema: cfg.Schema, N: n, Towers: towers, D: n / 2,
			TMCrossLayers: 1, CrossLayers: 2, DeepMLP: []int{64, 32}, Seed: 1})},
	}

	fmt.Printf("%-24s %9s %9s %12s %10s\n", "Model", "AUC", "LogLoss", "MFlops/s", "Params(M)")
	for _, r := range runs {
		out := models.Train(r.model, gen, tc)
		fmt.Printf("%-24s %9.4f %9.4f %12.3f %10.3f\n",
			r.name, out.AUC, out.LogLoss, out.MFlopsPerSample, float64(out.Params)/1e6)
	}
	fmt.Println("\nDMT variants should be on par with their baselines at lower MFlops/sample")
	fmt.Println("(Table 4's shape); towers were created by TP from probe embeddings.")
}
