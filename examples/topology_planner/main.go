// Topology planner: sweep deployments of DLRM across hardware generations,
// cluster sizes, and compression ratios, and report the modeled iteration
// time and speedup of each — the what-if tool a capacity planner would use
// before committing a training job (§5.3's experiments as a service).
//
//	go run ./examples/topology_planner
package main

import (
	"fmt"

	"dmt/internal/perfmodel"
	"dmt/internal/topology"
)

func main() {
	spec := perfmodel.DLRMSpec()

	fmt.Println("DLRM deployment sweep (batch 16K/GPU, quantized gradient comm)")
	fmt.Printf("%-6s %6s %12s %12s %12s %9s\n",
		"GPU", "GPUs", "baseline ms", "SPTT ms", "DMT ms", "speedup")
	for _, gen := range topology.Generations() {
		for _, gpus := range []int{16, 64, 256, 512} {
			if gen.Name == "V100" && gpus > 128 {
				continue
			}
			c := topology.NewCluster(gen, gpus)
			base := perfmodel.Iterate(perfmodel.DefaultConfig(spec, c, perfmodel.Baseline))
			sptt := perfmodel.Iterate(perfmodel.DefaultConfig(spec, c, perfmodel.SPTT))
			dmt := perfmodel.Iterate(perfmodel.DefaultConfig(spec, c, perfmodel.DMT))
			fmt.Printf("%-6s %6d %12.2f %12.2f %12.2f %8.2fx\n",
				gen.Name, gpus, base.Total()*1e3, sptt.Total()*1e3, dmt.Total()*1e3,
				base.Total()/dmt.Total())
		}
	}

	// Pick the best compression ratio for a quality budget: Table 5 says CR
	// 16 costs about half a point of AUC; a planner trades that against the
	// modeled throughput.
	fmt.Println("\nCompression-ratio frontier on 512xH100 (quality cost from Table 5's shape):")
	c := topology.NewCluster(topology.H100, 512)
	sptt := perfmodel.DefaultConfig(spec, c, perfmodel.SPTT)
	fmt.Printf("%6s %14s %16s\n", "CR", "DMT iter ms", "speedup vs SPTT")
	for _, cr := range []float64{1, 2, 4, 8, 16} {
		dmt := perfmodel.DefaultConfig(spec, c, perfmodel.DMT)
		dmt.CompressionRatio = cr
		it := perfmodel.Iterate(dmt)
		fmt.Printf("%6.0f %14.2f %15.2fx\n",
			cr, it.Total()*1e3, perfmodel.Iterate(sptt).Total()/it.Total())
	}

	// K-host towers (§3.1.3): trading peer-world reduction against wider
	// intra-tower collectives.
	fmt.Println("\nHosts-per-tower ablation on 512xA100:")
	ca := topology.NewCluster(topology.A100, 512)
	fmt.Printf("%14s %8s %14s\n", "hosts/tower", "towers", "DMT iter ms")
	for _, k := range []int{1, 2, 4, 8} {
		cfg := perfmodel.DefaultConfig(spec, ca, perfmodel.DMT)
		cfg.Towers = ca.Hosts / k
		fmt.Printf("%14d %8d %14.2f\n", k, cfg.Towers, perfmodel.Iterate(cfg).Total()*1e3)
	}
}
