// SPTT walkthrough: the paper's Figure 7 example — 4 GPUs on 2 hosts, 4
// single-hot features in 2 towers — executed as real dataflow, with the
// transform's output checked bit-for-bit against the classic global
// AlltoAll (Figure 4) and the traffic split into NVLink vs RDMA bytes.
//
//	go run ./examples/sptt_walkthrough
package main

import (
	"fmt"

	"dmt/internal/nn"
	"dmt/internal/sptt"
	"dmt/internal/tensor"
	"dmt/internal/topology"
)

func main() {
	// Figure 7's setup: G=4, L=2, so T=2 towers. Tower 0 owns features 0,1
	// (host 0); tower 1 owns features 2,3 (host 1). One sample per GPU.
	const g, l, b, n = 4, 2, 1, 2
	cfg := sptt.Config{
		G: g, L: l, B: b, N: n,
		Features: []sptt.FeatureSpec{
			{Name: "orange", Cardinality: 4, Hot: 1, Mode: nn.PoolSum},
			{Name: "red", Cardinality: 4, Hot: 1, Mode: nn.PoolSum},
			{Name: "blue", Cardinality: 4, Hot: 1, Mode: nn.PoolSum},
			{Name: "green", Cardinality: 4, Hot: 1, Mode: nn.PoolSum},
		},
		TowerOf: []int{0, 0, 1, 1},
		RankOf:  []int{0, 1, 2, 3},
	}
	eng, err := sptt.NewEngine(cfg, 1)
	if err != nil {
		panic(err)
	}
	// Make table values readable: feature f, row r holds (10f+r, 10f+r+.5),
	// so V_k = value of feature k%4 for sample k/4 is identifiable.
	for f, e := range eng.Tables {
		for r := 0; r < 4; r++ {
			e.Table.Set(float32(10*f+r), r, 0)
			e.Table.Set(float32(10*f+r)+0.5, r, 1)
		}
	}
	// Rank r's sample uses index r for every feature, mirroring the paper's
	// I_{4r+k} labeling.
	inputs := make([]*sptt.Inputs, g)
	for r := 0; r < g; r++ {
		in := &sptt.Inputs{Indices: make([][]int32, 4), Offsets: make([][]int32, 4)}
		for f := 0; f < 4; f++ {
			in.Indices[f] = []int32{int32(r)}
			in.Offsets[f] = []int32{0}
		}
		inputs[r] = in
	}

	fmt.Println("Peer order for G=4, L=2 (paper: 0,2,1,3):", sptt.PeerOrder(g, l))

	base, bst := eng.BaselineForward(inputs)
	out, sst := eng.SPTTForward(inputs, sptt.Options{})

	fmt.Println("\nPer-rank embeddings after distribution (feature-major, value V[f][sample]):")
	for r := 0; r < g; r++ {
		fmt.Printf("  GPU %d:", r)
		for f := 0; f < 4; f++ {
			fmt.Printf("  V%d=%.0f", 4*r+f, out[r].At(0, f, 0)) // V_{4r+f}
		}
		equal := base[r].Equal(out[r])
		fmt.Printf("   (matches global AlltoAll: %v)\n", equal)
		if !equal {
			panic("semantic preservation violated")
		}
	}

	cluster := topology.Cluster{Gen: topology.A100, Hosts: 2, GPUsPerHost: 2}
	sum := func(m [][]int64) (intra, cross int64) { return cluster.SplitTraffic(m) }
	bIntra, bCross := sum(bst.Traffic)
	_, gCross := sum(sst.GlobalTraffic)
	hIntra, hCross := sum(sst.HostTraffic)
	pIntra, pCross := sum(sst.PeerTraffic)

	fmt.Println("\nTraffic accounting (bytes):")
	fmt.Printf("  baseline global AlltoAll:   intra-host %4d  cross-host %4d\n", bIntra, bCross)
	fmt.Printf("  SPTT step (a) indices:      cross-host %4d\n", gCross)
	fmt.Printf("  SPTT step (d) intra-host:   intra-host %4d  cross-host %4d (NVLink domain)\n", hIntra, hCross)
	fmt.Printf("  SPTT step (f) peer A2A:     intra-host %4d  cross-host %4d (world T=%d)\n", pIntra, pCross, cfg.T())
	fmt.Println("\nSPTT moved the intra-host share onto NVLink and shrank the cross-host")
	fmt.Println("collective's world from G=4 to T=2 — with bit-identical results (§3.1).")

	// The compressed variant: a pass-through tower has CR=1 and must also
	// be exact; a real tower module would shrink step (f)'s bytes by CR.
	mods := make([]sptt.TowerModule, g)
	for r := 0; r < g; r++ {
		mods[r] = passThrough{f: 2, n: n}
	}
	comp, _ := eng.SPTTForwardCompressed(inputs, mods, sptt.Options{})
	fmt.Printf("\ncompressed-path output width per rank: %d (= F x N with pass-through towers)\n",
		comp[0].Dim(1))
}

// passThrough is a minimal inline TowerModule for the demo.
type passThrough struct{ f, n int }

func (p passThrough) Forward(x *tensor.Tensor) *tensor.Tensor {
	return x.Reshape(x.Dim(0), p.f*p.n).Clone()
}
func (p passThrough) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(dy.Dim(0), p.f, p.n).Clone()
}
func (p passThrough) OutDim() int         { return p.f * p.n }
func (p passThrough) Params() []*nn.Param { return nil }
