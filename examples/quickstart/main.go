// Quickstart: plan a DMT deployment for a cluster and train the resulting
// model on the synthetic CTR workload.
//
//	go run ./examples/quickstart
//
// The flow mirrors how the paper's system is used (§3, §5): probe feature
// embeddings feed the Tower Partitioner, the planner assigns one tower per
// host with per-tower sharding, the performance model prices the deployment,
// and the planned DMT-DLRM trains with hierarchical feature interaction.
package main

import (
	"fmt"

	"dmt/internal/core"
	"dmt/internal/data"
	"dmt/internal/models"
	"dmt/internal/topology"
)

func main() {
	// A Criteo-like workload, shrunk for an in-process demo.
	cfg := data.CriteoLike(7)
	cfg.Cardinalities = make([]int, 16)
	cfg.HotSizes = make([]int, 16)
	for i := range cfg.Cardinalities {
		cfg.Cardinalities[i] = 64
		cfg.HotSizes[i] = 1
	}
	cfg.NumGroups = 4
	gen := data.NewGenerator(cfg)

	// Plan for 32 A100s (4 hosts -> 4 towers).
	cluster := topology.NewCluster(topology.A100, 32)
	planner := core.NewPlanner(cluster)
	plan, err := planner.Plan(gen.LatentBatch(0, 128), core.TablesFromSchema(cfg.Schema, 16))
	if err != nil {
		panic(err)
	}

	fmt.Printf("planned %d towers on %s:\n", len(plan.Towers), cluster)
	for t, feats := range plan.Towers {
		fmt.Printf("  tower %d -> host %d: features %v\n", t, t, feats)
	}
	fmt.Printf("modeled speedup over flat baseline: %.2fx (SPTT %.2fx x TM %.2fx)\n",
		plan.Throughput.SpeedupOverBaseline, plan.Throughput.SPTTShare, plan.Throughput.TMShare)

	// Train the planned model.
	m := core.BuildDMTDLRM(plan, cfg.Schema, 16, 42)
	tc := models.DefaultTrainConfig()
	tc.Steps = 300
	tc.BatchSize = 128
	res := models.Train(m, gen, tc)
	fmt.Printf("trained %s: AUC %.4f, NE %.4f, %.2f MFlops/sample, %.2fM params\n",
		m.Name(), res.AUC, res.NE, res.MFlopsPerSample, float64(res.Params)/1e6)
}
