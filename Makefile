# The targets CI runs are the ones humans run; keep them in sync with
# .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race fmt fmt-check vet bench bench-smoke bench-train fuzz-smoke serve-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 60m .

# One iteration of the fast benchmarks: proves they compile and run.
# BenchmarkDistributedStep includes the compressed-wire (fp16/int8) step
# variants, so the smoke run covers the quantized collectives too.
bench-smoke:
	$(GO) test -run '^$$' -bench '^(Benchmark(Serve|SPTT|TrainStep|Timeline)_|BenchmarkDistributedStep)' -benchtime 1x -timeout 20m .

# The distributed-training engine comparison: sequential vs rank-parallel,
# plus the compressed-wire variants.
bench-train:
	$(GO) test -run '^$$' -bench '^BenchmarkDistributedStep' -benchtime 5x -timeout 20m .

# Short native-fuzz runs over the wire codec (go test allows one -fuzz
# target per invocation, hence the two runs).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFloat16RoundTrip$$' -fuzztime 10s ./internal/quant
	$(GO) test -run '^$$' -fuzz '^FuzzLinearQuantRoundTrip$$' -fuzztime 10s ./internal/quant

serve-demo:
	$(GO) run ./cmd/dmt-serve -requests 8192 -concurrency 32
