# The targets CI runs are the ones humans run; keep them in sync with
# .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race fmt fmt-check vet lint bench bench-smoke bench-train bench-overlap bench-overlap-check bench-latency bench-latency-check bench-pipeline bench-pipeline-check bench-embtier bench-embtier-check bench-cluster bench-cluster-check bench-hotpath bench-hotpath-check fuzz-smoke serve-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The full lint gate: gofmt, go vet, and the repo's own dmt-lint analyzer
# suite (internal/analysis: pendingwait, retainrelease, determinism,
# noretain) run as a vet tool. staticcheck and the shadow pass run too
# when installed; offline environments skip them (CI runs them in the
# advisory lint-extra job, where they are installed from the network).
lint: fmt-check vet
	$(GO) build -o bin/dmt-lint ./cmd/dmt-lint
	$(GO) vet -vettool=bin/dmt-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed; skipped"; fi
	@if command -v shadow >/dev/null 2>&1; then $(GO) vet -vettool=$$(command -v shadow) ./...; \
	else echo "lint: shadow not installed; skipped"; fi

bench:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 60m .

# One iteration of the fast benchmarks: proves they compile and run.
# BenchmarkDistributedStep includes the compressed-wire (fp16/int8) and
# overlapped-schedule step variants, so the smoke run covers the quantized
# collectives and the async handle path too.
bench-smoke:
	$(GO) test -run '^$$' -bench '^(Benchmark(Serve|SPTT|TrainStep|Timeline)_|BenchmarkDistributedStep)' -benchtime 1x -timeout 20m .

# The distributed-training engine comparison: sequential vs rank-parallel
# vs overlapped, plus the compressed-wire variants.
bench-train:
	$(GO) test -run '^$$' -bench '^BenchmarkDistributedStep' -benchtime 5x -timeout 20m .

# Overlap comparison: blocking vs overlapped engines side by side. The
# overlapped rows should report lower exposed-ms/step; the fp16 pair at
# G=8 is the acceptance comparison.
bench-overlap:
	$(GO) test -run '^$$' -bench '^BenchmarkDistributedStep$$/^(rank-parallel|overlap)$$' -benchtime 5x -timeout 20m .

# CI gate behind the overlap claim: run the blocking and overlapped fp16
# step at G=8 and FAIL unless the overlapped row reports strictly lower
# exposed-ms/step — an overlap regression breaks the build, it doesn't
# just print.
bench-overlap-check:
	$(GO) test -run '^$$' -bench '^BenchmarkDistributedStep$$/^(rank-parallel|overlap)$$/^fp16$$/^G=8$$' -benchtime 3x -timeout 10m . > bench-overlap.out
	@cat bench-overlap.out
	@awk '/Step\/rank-parallel\/fp16/ { for (i = 2; i <= NF; i++) if ($$i == "exposed-ms/step") base = $$(i-1) } \
	     /Step\/overlap\/fp16/ { for (i = 2; i <= NF; i++) if ($$i == "exposed-ms/step") ov = $$(i-1) } \
	     END { if (base == "" || ov == "") { print "bench-overlap-check: exposed-ms/step metrics not found"; exit 1 } \
	           printf "exposed-ms/step: blocking %s vs overlapped %s\n", base, ov; \
	           if (ov + 0 >= base + 0) { print "bench-overlap-check: FAIL - overlap did not reduce exposed comm"; exit 1 } }' bench-overlap.out
	@rm -f bench-overlap.out

# Simulated-latency step variants: the same engines with the comm runtime
# driven by the netsim cost model; exposed/hidden metrics are modeled
# virtual-clock milliseconds (deterministic, wire-byte-driven).
bench-latency:
	$(GO) test -run '^$$' -bench '^BenchmarkDistributedStep/latency' -benchtime 3x -timeout 20m .

# CI gate behind the latency model — the measured Figure 13 acceptance
# assertions, run as a test: (a) the overlapped schedule models strictly
# less exposed comm than blocking, (b) the fp16 wire models strictly less
# exposed time than fp32 (wire bytes drive the delays), and the table is
# bit-for-bit deterministic.
bench-latency-check:
	$(GO) test -run '^TestFigure13Measured$$' -v ./internal/experiments

# The cross-step pipelining table (dmt-bench -exp pipeline): the overlapped
# vs pipelined schedules on the simulated A100 fabric at the wide-over-arch
# profile, where the gradient-bucket drain outlasts the SPTT backward
# window and the boundary actually costs exposed time.
bench-pipeline:
	$(GO) run ./cmd/dmt-bench -exp pipeline

# CI gate behind the cross-step schedule: (a) the measured-table acceptance
# test — pipelined exposed comm strictly below the overlapped baseline at
# G=8 for fp32 and fp16, cross-step bucket completion actually hidden, the
# trajectory schedule-invariant, the table deterministic — and (b) the
# rendered table byte-identical across runs and GOMAXPROCS settings.
bench-pipeline-check:
	$(GO) test -run '^TestPipelineMeasured$$' -v ./internal/experiments
	$(GO) run ./cmd/dmt-bench -exp pipeline > bench-pipeline-1.out
	GOMAXPROCS=2 $(GO) run ./cmd/dmt-bench -exp pipeline > bench-pipeline-2.out
	@cmp bench-pipeline-1.out bench-pipeline-2.out || { echo "bench-pipeline-check: FAIL - table differs across GOMAXPROCS"; exit 1; }
	@echo "bench-pipeline-check: table byte-identical across runs and GOMAXPROCS"
	@rm -f bench-pipeline-1.out bench-pipeline-2.out

# The disaggregated embedding tier's memory:compute sweep (dmt-bench -exp
# embtier): local tables vs 1/2/4 dedicated embedding-server ranks, hot-ID
# cache off and on.
bench-embtier:
	$(GO) run ./cmd/dmt-bench -exp embtier

# CI gate behind the embedding tier: every configuration follows one
# bitwise trajectory, the remote tier actually ships cross-host lookup
# bytes, and the write-back cache strictly reduces both lookup wire volume
# and modeled exposed lookup time vs cache-off.
bench-embtier-check:
	$(GO) test -run '^TestEmbTierCacheReducesExposedLookup$$' -v ./internal/experiments

# The cluster capacity-planning sweep (dmt-serve -cluster): open-loop
# SLO-class arrivals replayed through the discrete-event fleet simulator at
# growing replica counts.
bench-cluster:
	$(GO) run ./cmd/dmt-serve -cluster

# CI gates behind the simulator: (a) an added replica at a fixed queue-bound
# load strictly reduces the simulated p99, (b) the same profile renders a
# byte-identical capacity table on every run, and (c) a recorded trace
# replays to bit-identical simulator output across runs and GOMAXPROCS.
bench-cluster-check:
	$(GO) test -run '^(TestClusterCapacityDeterministic|TestClusterAddedReplicaReducesP99)$$' -v ./internal/experiments
	$(GO) test -run '^TestSimulatorDeterministicAcrossRunsAndProcs$$' -v ./internal/cluster

# Hot-path kernel benchmarks: the serial vs parallel tiled MatMul backends
# at over-arch shapes, and the fused vs unfused quantized codec with
# allocs/op (-benchmem) — the before/after numbers behind the README's
# "Hot-path kernels" section.
bench-hotpath:
	$(GO) test -run '^$$' -bench '^BenchmarkHotpath' -benchmem -timeout 20m ./internal/tensor ./internal/quant

# CI gates behind the raw-speed pass: (a) the parallel tiled backend must
# beat the serial kernel by >= 1.5x for MatMul and MatMulBT at over-arch
# shapes (skips below 2 procs — nothing to fan out over), (b) the fused
# codec must allocate strictly less per op than the unfused composition it
# replaced, with the pooled encode paths pinned at zero steady-state
# allocations, and (c) the pooled EmbeddingBag backward stays O(1) allocs.
bench-hotpath-check:
	$(GO) test -run '^TestHotpathParallelMatMulSpeedup$$' -v ./internal/tensor
	$(GO) test -run '^(TestFusedCutsAllocs|TestPooledEncodeAllocs)$$' -v ./internal/quant
	$(GO) test -run '^TestEmbeddingBackwardAllocs$$' -v ./internal/nn

# Short native-fuzz runs over the wire codec (go test allows one -fuzz
# target per invocation, hence the separate runs).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFloat16RoundTrip$$' -fuzztime 10s ./internal/quant
	$(GO) test -run '^$$' -fuzz '^FuzzLinearQuantRoundTrip$$' -fuzztime 10s ./internal/quant
	$(GO) test -run '^$$' -fuzz '^FuzzFusedCodec$$' -fuzztime 10s ./internal/quant

serve-demo:
	$(GO) run ./cmd/dmt-serve -requests 8192 -concurrency 32
