// Package dmt is a from-scratch Go reproduction of "Disaggregated
// Multi-Tower: Topology-aware Modeling Technique for Efficient Large Scale
// Recommendation" (Luo et al., MLSys 2024).
//
// The library implements the paper's three contributions — the
// Semantic-Preserving Tower Transform (internal/sptt), Tower Modules
// (internal/towers), and the Tower Partitioner (internal/partition) —
// together with every substrate they need: a float32 tensor/NN stack
// (internal/tensor, internal/nn), an in-process collective runtime
// (internal/comm), a synthetic CTR workload with planted interaction
// structure (internal/data), a calibrated datacenter performance model
// (internal/topology, internal/netsim, internal/perfmodel), embedding
// sharding (internal/sharding), the DLRM/DCN model families
// (internal/models), a parallelism-search study (internal/parallel), and
// per-table/figure experiment drivers (internal/experiments) orchestrated
// by the public planning API (internal/core).
//
// The root bench_test.go regenerates every table and figure of the paper's
// evaluation; see DESIGN.md for the per-experiment index and EXPERIMENTS.md
// for paper-versus-measured results.
package dmt
